package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"r3dla/internal/fleet"
	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// runSweep is the `r3dla sweep` subcommand: a parameter-space sweep over
// the configuration grid, sharded across the Lab's worker pool, with
// checkpoint/resume through an NDJSON journal. The grid comes from a
// JSON spec file (-spec) or from per-axis flags; stdout carries the
// aggregate tables (byte-identical for any -jobs), stderr the progress.
func runSweep(args []string) {
	fatalPrefix = "r3dla sweep"
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		specPath  = fs.String("spec", "", "sweep spec file (JSON); overrides the axis flags")
		wls       = fs.String("workloads", "", "comma-separated workloads, suites, or 'all'")
		presets   = fs.String("preset", "", "preset axis: comma-separated baseline,dla,r3")
		t1s       = fs.String("t1", "", "T1-offload axis: comma-separated true,false")
		reuses    = fs.String("value-reuse", "", "value-reuse axis: comma-separated true,false")
		fetchbufs = fs.String("fetch-buffer", "", "fetch-buffer axis: comma-separated true,false")
		recycles  = fs.String("recycle", "", "recycle axis: comma-separated true,false")
		boqs      = fs.String("boq", "", "BOQ-size axis: comma-separated ints")
		fqs       = fs.String("fq", "", "FQ-size axis: comma-separated ints")
		vqs       = fs.String("vq", "", "VQ-size axis: comma-separated ints")
		versions  = fs.String("version", "", "fixed skeleton version axis: comma-separated ints")
		cores     = fs.String("cores", "", "core-model axis: comma-separated default,wide,half")
		budget    = fs.Uint64("budget", 150_000, "committed instructions per cell")
		fidelity  = fs.String("fidelity", "", "evaluation fidelity: cycle (default), analytic, mc")
		jobs      = fs.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS; fleet: 16 per backend)")
		journal   = fs.String("journal", "", "checkpoint journal path (NDJSON, one cell per line)")
		resume    = fs.Bool("resume", false, "skip cells already checkpointed in -journal")
		format    = fs.String("format", "text", "comma-separated output formats: text, json, csv")
		outDir    = fs.String("out", "results", "directory for json/csv output files")
		quiet     = fs.Bool("q", false, "suppress progress reporting on stderr")
		backends  = fs.String("backends", "", "comma-separated r3dlad addresses; empty = run locally")
		hedge     = fs.Duration("hedge", 0, "fleet: duplicate straggler cells onto a second backend after this delay (0 = off)")
	)
	fs.Parse(args)

	budgetSet, fidelitySet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "budget":
			budgetSet = true
		case "fidelity":
			fidelitySet = true
		}
	})

	var spec sweep.Spec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
		if spec, err = sweep.ParseSpec(data); err != nil {
			fatalf("%v", err)
		}
		// Precedence: an explicit -budget beats the spec file's budget,
		// which beats the default.
		if budgetSet || spec.Budget == 0 {
			spec.Budget = *budget
		}
	} else {
		spec = sweep.Spec{
			Workloads: splitList(*wls),
			Budget:    *budget,
			Axes: sweep.Axes{
				Preset:      splitList(*presets),
				T1:          parseBools("t1", *t1s),
				ValueReuse:  parseBools("value-reuse", *reuses),
				FetchBuffer: parseBools("fetch-buffer", *fetchbufs),
				Recycle:     parseBools("recycle", *recycles),
				BOQSize:     parseInts("boq", *boqs),
				FQSize:      parseInts("fq", *fqs),
				VQSize:      parseInts("vq", *vqs),
				Version:     parseInts("version", *versions),
				Cores:       parseCores(*cores),
			},
		}
	}
	// An explicit -fidelity beats the spec file's fidelity (axis-flag
	// grids have no other way to set it at all).
	if fidelitySet || spec.Fidelity == "" {
		spec.Fidelity = *fidelity
	}
	if *resume && *journal == "" {
		fatalf("-resume requires -journal")
	}

	wantText, wantJSON, wantCSV := parseFormats(*format)
	if wantJSON || wantCSV {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Cells run through a Runner: the in-process Lab, or a fleet pool
	// routing cells across r3dlad backends. The journal sits on this side
	// of the boundary, so checkpoint/resume works identically either way;
	// the backends must advertise the sweep's budget (verified up front),
	// because skeleton preparation runs at the server's training budget.
	var runner sweep.Runner
	if *backends != "" {
		// Backends simulate cycle-accurately; estimator tiers are local
		// math over a local calibration and gain nothing from a fleet.
		if tr, err := sweep.TierOf(spec.Fidelity); err != nil {
			fatalf("%v", err)
		} else if tr != sweep.TierCycle {
			fatalf("-fidelity %s runs locally; drop -backends", spec.Fidelity)
		}
		// Sweep cells are bulk traffic: batch priority keeps them from
		// starving interactive runs sharing the same fleet.
		remotes, err := parseBackends(*backends, fleet.WithPriority(lab.PriorityBatch))
		if err != nil {
			fatalf("%v", err)
		}
		if err := verifyFleetBudget(ctx, remotes, spec.Budget); err != nil {
			fatalf("%v", err)
		}
		pool, err := newFleetPool(remotes, *jobs, *hedge)
		if err != nil {
			fatalf("%v", err)
		}
		defer pool.Close()
		runner = pool
	} else {
		l, err := lab.New(lab.WithBudget(spec.Budget), lab.WithJobs(*jobs))
		if err != nil {
			fatalf("%v", err)
		}
		tiers := &sweep.TierRunners{Lab: l}
		if runner, err = tiers.Runner(spec.Fidelity, spec.Budget, 0); err != nil {
			fatalf("%v", err)
		}
	}

	opts := sweep.Options{Journal: *journal, Resume: *resume}
	opts.Warn = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "r3dla "+format+"\n", args...)
	}
	if !*quiet {
		opts.Progress = func(ev sweep.Event) {
			state := ev.Elapsed.Round(time.Millisecond).String()
			if ev.Resumed {
				state = "resumed"
			}
			fmt.Fprintf(os.Stderr, "  [cell %d/%d] %-9s %s (%s)\n",
				ev.Done, ev.Total, ev.Cell.Workload, strings.Join(ev.Cell.Coords, " "), state)
		}
	}
	res, err := sweep.Run(ctx, runner, spec, opts)
	if err != nil {
		if *journal != "" && ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "r3dla sweep: interrupted; resume with -journal %s -resume\n", *journal)
		}
		fatalf("%v", err)
	}
	if res.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "r3dla sweep: %d/%d cells restored from %s\n", res.Resumed, len(res.Cells), *journal)
	}

	rep := res.Report()
	if wantText {
		fmt.Println(rep.String())
	}
	if wantJSON {
		if err := writeFile(filepath.Join(*outDir, "sweep.json"), rep.WriteJSON); err != nil {
			fatalf("%v", err)
		}
	}
	if wantCSV {
		if err := writeFile(filepath.Join(*outDir, "sweep.csv"), rep.WriteCSV); err != nil {
			fatalf("%v", err)
		}
	}
}

// fatalPrefix names the subcommand in fatalf output; each subcommand
// sets it on entry so the shared flag parsers report the right context.
var fatalPrefix = "r3dla sweep"

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, fatalPrefix+": "+format+"\n", args...)
	os.Exit(1)
}

// splitList splits a comma-separated flag value ("" = nil).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

func parseBools(name, s string) []bool {
	var out []bool
	for _, e := range splitList(s) {
		v, err := strconv.ParseBool(e)
		if err != nil {
			fatalf("-%s: %q is not a bool", name, e)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(name, s string) []int {
	var out []int
	for _, e := range splitList(s) {
		v, err := strconv.Atoi(e)
		if err != nil {
			fatalf("-%s: %q is not an int", name, e)
		}
		out = append(out, v)
	}
	return out
}

func parseCores(s string) []lab.CoreSpec {
	var out []lab.CoreSpec
	for _, e := range splitList(s) {
		out = append(out, lab.CoreSpec{Model: e})
	}
	return out
}

func parseFormats(format string) (text, jsonF, csvF bool) {
	for _, f := range strings.Split(format, ",") {
		switch strings.TrimSpace(f) {
		case "text":
			text = true
		case "json":
			jsonF = true
		case "csv":
			csvF = true
		case "":
		default:
			fmt.Fprintf(os.Stderr, "unknown -format %q (want text, json, csv)\n", f)
			os.Exit(2)
		}
	}
	return
}
