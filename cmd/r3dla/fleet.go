package main

import (
	"context"
	"fmt"
	"time"

	"r3dla/internal/fleet"
)

// parseBackends turns the -backends flag value (comma-separated host:port
// addresses or URLs of r3dlad instances) into remote backends; opts apply
// to every backend (sweep and explore stamp their bulk traffic batch
// priority here, so interactive runs cut ahead under load).
func parseBackends(s string, opts ...fleet.RemoteOption) ([]*fleet.Remote, error) {
	addrs := splitList(s)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-backends: no addresses")
	}
	remotes := make([]*fleet.Remote, 0, len(addrs))
	for _, a := range addrs {
		r, err := fleet.NewRemote(a, opts...)
		if err != nil {
			return nil, err
		}
		remotes = append(remotes, r)
	}
	return remotes, nil
}

// newFleetPool assembles the router the commands dispatch through. jobs
// bounds total in-flight requests across the fleet; <= 0 defaults to
// 16 per backend — enough to keep every r3dlad busy, comfortably under
// its default -inflight 64 admission bound, and a cap on client-side
// sockets for large sweeps. hedge > 0 duplicates straggler requests
// onto a second backend.
func newFleetPool(remotes []*fleet.Remote, jobs int, hedge time.Duration) (*fleet.Pool, error) {
	backends := make([]fleet.Backend, len(remotes))
	for i, r := range remotes {
		backends[i] = r
	}
	if jobs <= 0 {
		jobs = 16 * len(remotes)
	}
	opts := []fleet.PoolOption{fleet.WithJobs(jobs)}
	if hedge > 0 {
		opts = append(opts, fleet.WithHedgeAfter(hedge))
	}
	return fleet.NewPool(backends, opts...)
}

// verifyFleetBudget asserts every backend advertises the client's budget
// as its default. Experiments execute outright at the serving backend's
// default; and although runs and sweep cells carry their budget
// explicitly, per-workload preparation (profiling + skeleton generation)
// runs at the backend's training budget — half its -budget — so a
// backend started with a different -budget generates different skeletons
// and silently produces output that matches no single-process run. The
// mismatch is an error, not a warning, on every fleet path.
func verifyFleetBudget(ctx context.Context, remotes []*fleet.Remote, budget uint64) error {
	for _, r := range remotes {
		// Bound each probe: an unreachable backend must become an error,
		// not an indefinite hang before any work starts.
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		h, err := r.Health(pctx)
		cancel()
		if err != nil {
			return fmt.Errorf("backend %s: %v", r.Name(), err)
		}
		if h.Budget != budget {
			return fmt.Errorf("backend %s serves budget %d, client asked for %d — skeletons would differ (start r3dlad with -budget %d)",
				r.Name(), h.Budget, budget, budget)
		}
	}
	return nil
}
