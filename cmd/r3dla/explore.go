package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"r3dla/internal/dse"
	"r3dla/internal/fleet"
	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// runExplore is the `r3dla explore` subcommand: adaptive design-space
// exploration over a symbolic configuration space too large to sweep.
// The space comes from an explore spec file (-spec, JSON) or from the
// same per-axis flags as `r3dla sweep`; -strategy picks the search loop
// (random / lhs one-shot sampling, successive halving on IPC, Pareto
// search over IPC vs energy) and -seed fixes every random choice, so
// stdout is byte-identical for any -jobs count, local or -backends, and
// across -journal / -resume interruptions.
func runExplore(args []string) {
	fatalPrefix = "r3dla explore"
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	var (
		specPath  = fs.String("spec", "", "explore spec file (JSON); overrides the axis flags")
		wls       = fs.String("workloads", "", "comma-separated workloads, suites, or 'all'")
		presets   = fs.String("preset", "", "preset axis: comma-separated baseline,dla,r3")
		t1s       = fs.String("t1", "", "T1-offload axis: comma-separated true,false")
		reuses    = fs.String("value-reuse", "", "value-reuse axis: comma-separated true,false")
		fetchbufs = fs.String("fetch-buffer", "", "fetch-buffer axis: comma-separated true,false")
		recycles  = fs.String("recycle", "", "recycle axis: comma-separated true,false")
		boqs      = fs.String("boq", "", "BOQ-size axis: comma-separated ints")
		fqs       = fs.String("fq", "", "FQ-size axis: comma-separated ints")
		vqs       = fs.String("vq", "", "VQ-size axis: comma-separated ints")
		versions  = fs.String("version", "", "fixed skeleton version axis: comma-separated ints")
		cores     = fs.String("cores", "", "core-model axis: comma-separated default,wide,half")
		budget    = fs.Uint64("budget", 150_000, "full-fidelity committed instructions per cell")
		fidelity  = fs.String("fidelity", "", "evaluation fidelity: cycle (default), analytic, mc, or ladder (analytic -> mc -> cycle)")
		strategy  = fs.String("strategy", dse.StrategyPareto, "search strategy: random, lhs, halving, pareto")
		sampler   = fs.String("sampler", "", "candidate sampler for halving/pareto: random, lhs (default random)")
		seed      = fs.Int64("seed", 1, "exploration seed; equal seeds give byte-identical output")
		samples   = fs.Int("samples", 0, "cells drawn per round (0 = default)")
		rounds    = fs.Int("rounds", 0, "pareto rounds (0 = default)")
		eta       = fs.Int("eta", 0, "halving reduction factor (0 = default)")
		minBudget = fs.Uint64("min-budget", 0, "halving round-0 budget (0 = derive from -budget)")
		jobs      = fs.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS; fleet: 16 per backend)")
		journal   = fs.String("journal", "", "checkpoint journal path (NDJSON, one cell per line)")
		resume    = fs.Bool("resume", false, "restore cells already checkpointed in -journal")
		format    = fs.String("format", "text", "comma-separated output formats: text, json, csv")
		outDir    = fs.String("out", "results", "directory for json/csv output files")
		quiet     = fs.Bool("q", false, "suppress progress reporting on stderr")
		backends  = fs.String("backends", "", "comma-separated r3dlad addresses; empty = run locally")
		hedge     = fs.Duration("hedge", 0, "fleet: duplicate straggler cells onto a second backend after this delay (0 = off)")
	)
	fs.Parse(args)

	// Presence, not value, decides precedence: an explicit -samples 0 must
	// override a spec file's non-zero samples, which a value test alone
	// cannot see (zero is also every knob's "use the default" sentinel).
	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	var spec dse.Spec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
		if spec, err = dse.ParseSpec(data); err != nil {
			fatalf("%v", err)
		}
	} else {
		spec.Space = sweep.Spec{
			Workloads: splitList(*wls),
			Budget:    *budget,
			Axes: sweep.Axes{
				Preset:      splitList(*presets),
				T1:          parseBools("t1", *t1s),
				ValueReuse:  parseBools("value-reuse", *reuses),
				FetchBuffer: parseBools("fetch-buffer", *fetchbufs),
				Recycle:     parseBools("recycle", *recycles),
				BOQSize:     parseInts("boq", *boqs),
				FQSize:      parseInts("fq", *fqs),
				VQSize:      parseInts("vq", *vqs),
				Version:     parseInts("version", *versions),
				Cores:       parseCores(*cores),
			},
		}
	}
	mergeSearchFlags(&spec, searchFlags{
		budget:    *budget,
		fidelity:  *fidelity,
		strategy:  *strategy,
		sampler:   *sampler,
		seed:      *seed,
		samples:   *samples,
		rounds:    *rounds,
		eta:       *eta,
		minBudget: *minBudget,
	}, setFlags)
	if *resume && *journal == "" {
		fatalf("-resume requires -journal")
	}

	wantText, wantJSON, wantCSV := parseFormats(*format)
	if wantJSON || wantCSV {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The search loop draws cells, a Runner evaluates them: the in-process
	// Lab or a fleet pool over r3dlad backends. Journal and sampler state
	// both live on this side of the boundary, so a distributed exploration
	// checkpoints, resumes and byte-matches a local one.
	var (
		runner  sweep.Runner
		tierLab *lab.Lab // local lab the estimator tiers calibrate against
	)
	if *backends != "" {
		// Backends simulate cycle-accurately; a whole-search estimator
		// fidelity is local math and gains nothing from a fleet. A ladder's
		// estimator rungs likewise run locally — only its cycle-accurate
		// finalists go to the backends.
		if tr, err := sweep.TierOf(spec.Space.Fidelity); err != nil {
			fatalf("%v", err)
		} else if tr != sweep.TierCycle {
			fatalf("-fidelity %s runs locally; drop -backends", spec.Space.Fidelity)
		}
		// Exploration cells are bulk traffic: batch priority keeps them
		// from starving interactive runs sharing the same fleet.
		remotes, err := parseBackends(*backends, fleet.WithPriority(lab.PriorityBatch))
		if err != nil {
			fatalf("%v", err)
		}
		if err := verifyFleetBudget(ctx, remotes, spec.Space.Budget); err != nil {
			fatalf("%v", err)
		}
		pool, err := newFleetPool(remotes, *jobs, *hedge)
		if err != nil {
			fatalf("%v", err)
		}
		defer pool.Close()
		runner = pool
		if spec.Fidelity == dse.FidelityLadder {
			if tierLab, err = lab.New(lab.WithBudget(spec.Space.Budget), lab.WithJobs(*jobs)); err != nil {
				fatalf("%v", err)
			}
		}
	} else {
		l, err := lab.New(lab.WithBudget(spec.Space.Budget), lab.WithJobs(*jobs))
		if err != nil {
			fatalf("%v", err)
		}
		tiers := &sweep.TierRunners{Lab: l}
		if runner, err = tiers.Runner(spec.Space.Fidelity, spec.Space.Budget, uint64(spec.Seed)); err != nil {
			fatalf("%v", err)
		}
		tierLab = l
	}

	opts := dse.Options{Journal: *journal, Resume: *resume}
	if spec.Fidelity == dse.FidelityLadder {
		tiers := &sweep.TierRunners{Lab: tierLab}
		analytic, aerr := tiers.Runner(sweep.TierAnalytic, spec.Space.Budget, uint64(spec.Seed))
		mc, merr := tiers.Runner(sweep.TierMC, spec.Space.Budget, uint64(spec.Seed))
		if aerr != nil || merr != nil {
			fatalf("fidelity ladder tiers unavailable")
		}
		opts.Tiers = &dse.Tiers{Analytic: analytic, MC: mc}
	}
	if !*quiet {
		opts.Progress = func(ev sweep.Event) {
			state := ev.Elapsed.Round(time.Millisecond).String()
			if ev.Resumed {
				state = "resumed"
			}
			fmt.Fprintf(os.Stderr, "  [cell %d/%d @%d] %-9s %s (%s)\n",
				ev.Done, ev.Total, ev.Result.Budget, ev.Cell.Workload,
				strings.Join(ev.Cell.Coords, " "), state)
		}
	}
	res, err := dse.Explore(ctx, runner, spec, opts)
	if err != nil {
		if *journal != "" && ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "r3dla explore: interrupted; resume with -journal %s -resume\n", *journal)
		}
		fatalf("%v", err)
	}
	if res.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "r3dla explore: %d/%d cells restored from %s\n", res.Resumed, len(res.Evaluated), *journal)
	}

	rep := res.Report()
	if wantText {
		fmt.Println(rep.String())
	}
	if wantJSON {
		if err := writeFile(filepath.Join(*outDir, "explore.json"), rep.WriteJSON); err != nil {
			fatalf("%v", err)
		}
	}
	if wantCSV {
		if err := writeFile(filepath.Join(*outDir, "explore.csv"), rep.WriteCSV); err != nil {
			fatalf("%v", err)
		}
	}
}

// searchFlags carries the explore search knobs as parsed from the
// command line; merge precedence against a spec file lives in
// mergeSearchFlags so it is testable without a FlagSet.
type searchFlags struct {
	budget    uint64
	fidelity  string
	strategy  string
	sampler   string
	seed      int64
	samples   int
	rounds    int
	eta       int
	minBudget uint64
}

// mergeSearchFlags resolves the three-way precedence between an explicit
// command-line flag, a spec-file value, and the package default: a flag
// whose name is in set always wins — including an explicit zero, which
// is how a spec file's value is forced back to the package default —
// otherwise a non-zero (non-empty) spec value stands, and only then does
// the flag's default fill in.
func mergeSearchFlags(spec *dse.Spec, f searchFlags, set map[string]bool) {
	if set["budget"] || spec.Space.Budget == 0 {
		spec.Space.Budget = f.budget
	}
	if set["strategy"] || spec.Strategy == "" {
		spec.Strategy = f.strategy
	}
	if set["sampler"] || spec.Sampler == "" {
		spec.Sampler = f.sampler
	}
	if set["seed"] || spec.Seed == 0 {
		spec.Seed = f.seed
	}
	if set["samples"] || spec.Samples == 0 {
		spec.Samples = f.samples
	}
	if set["rounds"] || spec.Rounds == 0 {
		spec.Rounds = f.rounds
	}
	if set["eta"] || spec.Eta == 0 {
		spec.Eta = f.eta
	}
	if set["min-budget"] || spec.MinBudget == 0 {
		spec.MinBudget = f.minBudget
	}
	// -fidelity routes by value: "ladder" is an exploration mode
	// (Spec.Fidelity), while an estimator name runs the whole search on
	// that tier (Space.Fidelity, validated downstream). An explicit flag
	// replaces whatever the spec file said on both fields.
	if set["fidelity"] {
		spec.Fidelity, spec.Space.Fidelity = "", ""
		switch f.fidelity {
		case "", "cycle":
		case dse.FidelityLadder:
			spec.Fidelity = dse.FidelityLadder
		default:
			spec.Space.Fidelity = f.fidelity
		}
	}
}
