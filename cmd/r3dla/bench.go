package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"r3dla/internal/bench"
)

// runBench is the `r3dla bench` subcommand: it executes one of the fixed
// benchmark suites (core, fleet) through testing.Benchmark and either
// prints the results, writes a trajectory file (-out), or gates a fresh
// run against a committed trajectory (-against; the CI regression step).
//
//	r3dla bench                                  # run the core suite
//	r3dla bench -suite fleet -benchtime 3x
//	r3dla bench -out BENCH_core.json -baseline-from BENCH_core.json
//	r3dla bench -against BENCH_core.json         # CI regression gate
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		suiteName    = fs.String("suite", "core", "benchmark suite: core or fleet")
		benchtime    = fs.String("benchtime", "", "per-benchmark time or iteration count (e.g. 2s, 10x; default 1s)")
		out          = fs.String("out", "", "write the trajectory JSON to this file")
		baselineFrom = fs.String("baseline-from", "", "carry the baseline section forward from this trajectory file into -out")
		against      = fs.String("against", "", "gate this run against a committed trajectory file (exit 1 on regression)")
		nsTol        = fs.Float64("ns-tol", bench.DefaultTolerances().NsRatio, "ns/op tolerance band vs the committed file")
		allocTol     = fs.Float64("alloc-tol", bench.DefaultTolerances().AllocRatio, "allocs/op tolerance band vs the committed file")
		cpuprofile   = fs.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memprofile   = fs.String("memprofile", "", "write a heap profile after the suite to this file")
	)
	fs.Parse(args)

	// testing.Benchmark honors the testing package's benchtime flag; in a
	// non-test binary it must be registered (testing.Init) before use.
	testing.Init()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "r3dla bench: -benchtime: %v\n", err)
			os.Exit(2)
		}
	}

	defs, err := bench.Suite(*suiteName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dla bench: %v\n", err)
		os.Exit(2)
	}

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dla bench: %v\n", err)
		os.Exit(1)
	}

	results := bench.RunSuite(defs, func(r bench.Result) {
		fmt.Fprintf(os.Stderr, "%-24s %8d iters  %12.0f ns/op  %8d allocs/op  %10d B/op\n",
			r.Name, r.Iterations, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	})
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "r3dla bench: %v\n", err)
		os.Exit(1)
	}

	if *against != "" {
		committed, err := bench.ReadFile(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "r3dla bench: %v\n", err)
			os.Exit(1)
		}
		tol := bench.DefaultTolerances()
		tol.NsRatio, tol.AllocRatio = *nsTol, *allocTol
		var floors []bench.Improvement
		if *suiteName == "core" {
			floors = append(floors, bench.HeadlineImprovement())
		}
		if err := bench.Check(results, committed, tol, floors...); err != nil {
			fmt.Fprintf(os.Stderr, "r3dla bench: regression gate failed vs %s:\n%v\n", *against, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "r3dla bench: %s within tolerance of %s\n", *suiteName, *against)
	}

	if *out != "" {
		f := &bench.File{Schema: bench.SchemaVersion, Suite: *suiteName, Benchmarks: results}
		if *baselineFrom != "" {
			prev, err := bench.ReadFile(*baselineFrom)
			if err != nil {
				fmt.Fprintf(os.Stderr, "r3dla bench: -baseline-from: %v\n", err)
				os.Exit(1)
			}
			f.Baseline, f.Note = prev.Baseline, prev.Note
		}
		if err := f.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "r3dla bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "r3dla bench: wrote %s\n", *out)
	}
}

// startProfiles begins CPU profiling and arranges a heap snapshot; the
// returned stop function finalizes both. Shared by the run and bench
// subcommands.
func startProfiles(cpupath, mempath string) (stop func() error, err error) {
	var cpuf *os.File
	if cpupath != "" {
		cpuf, err = os.Create(cpupath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuf); err != nil {
			cpuf.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuf != nil {
			pprof.StopCPUProfile()
			if err := cpuf.Close(); err != nil {
				return err
			}
		}
		if mempath != "" {
			memf, err := os.Create(mempath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize the live set before the snapshot
			if err := pprof.WriteHeapProfile(memf); err != nil {
				memf.Close()
				return err
			}
			return memf.Close()
		}
		return nil
	}, nil
}
