// Command r3dla regenerates the tables and figures of the R3-DLA paper
// (Kondguli & Huang, HPCA 2019) from the simulator in this repository.
//
// Usage:
//
//	r3dla -exp fig9a                     # one experiment
//	r3dla -exp all -budget 300000        # everything, bigger runs
//	r3dla -exp all -jobs 8               # parallel, identical output
//	r3dla -exp all -format json,csv -out results
//	r3dla -list                          # what's available
//
//	r3dla sweep -workloads mcf,libq -preset dla,r3 -boq 128,512
//	r3dla sweep -spec sweep.json -journal sweep.ndjson
//	r3dla sweep -spec sweep.json -journal sweep.ndjson -resume
//
// The sweep subcommand explores a configuration grid (axes over presets,
// feature toggles, queue sizes, skeleton versions and core models) across
// a workload set, checkpointing completed cells to -journal so a killed
// sweep resumes with -resume; see README §sweeps for the spec format.
//
// Experiments run through the Lab client on a bounded worker pool
// (-jobs, default GOMAXPROCS); per-workload preparation and
// standard-configuration runs are shared across experiments, and the
// output is byte-identical for every -jobs value. Progress is reported
// on stderr as workloads are prepared and experiments complete; -v adds
// per-workload detail lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"r3dla/internal/lab"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		runSweep(os.Args[2:])
		return
	}
	var (
		expID   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		budget  = flag.Uint64("budget", 150_000, "committed instructions per simulation")
		list    = flag.Bool("list", false, "list available experiments")
		verbose = flag.Bool("v", false, "per-workload detail")
		jobs    = flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		format  = flag.String("format", "text", "comma-separated output formats: text, json, csv")
		outDir  = flag.String("out", "results", "directory for json/csv output files")
		quiet   = flag.Bool("q", false, "suppress progress reporting on stderr")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		fmt.Print(lab.FormatExperiments())
		if *expID == "" {
			os.Exit(2)
		}
		return
	}

	wantText, wantJSON, wantCSV := parseFormats(*format)
	if wantJSON || wantCSV {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "r3dla: %v\n", err)
			os.Exit(1)
		}
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = nil
		for _, e := range lab.ListExperiments() {
			ids = append(ids, e.ID)
		}
	} else if _, ok := lab.ExperimentByID(*expID); !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n%s", *expID, lab.FormatExperiments())
		os.Exit(2)
	}

	opts := []lab.ClientOption{lab.WithBudget(*budget), lab.WithJobs(*jobs)}
	if *verbose {
		opts = append(opts, lab.WithDetailLog(os.Stderr))
	}
	if !*quiet {
		opts = append(opts, lab.WithProgress(func(ev lab.Event) {
			switch ev.Stage {
			case "prep":
				fmt.Fprintf(os.Stderr, "  [prep] %-9s ready in %v\n", ev.Workload, ev.Elapsed.Round(time.Millisecond))
			case "run":
				if *verbose {
					fmt.Fprintf(os.Stderr, "  [run]  %-9s %-14s %v\n", ev.Workload, ev.Key, ev.Elapsed.Round(time.Millisecond))
				}
			case "exp":
				fmt.Fprintf(os.Stderr, "[done] %s (%v)\n", ev.Exp, ev.Elapsed.Round(time.Millisecond))
			}
		}))
	}
	l, err := lab.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dla: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	failed := false
	_, err = l.Experiments(ctx, ids, func(r lab.ExperimentResult) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "r3dla: %s: %v\n", r.ID, r.Err)
			failed = true
			return
		}
		// Reports go to stdout; timing goes to stderr with the rest of the
		// progress reporting, so stdout is byte-identical for any -jobs.
		if wantText {
			fmt.Println(r.Report.String())
		}
		if wantJSON {
			if werr := writeFile(filepath.Join(*outDir, r.ID+".json"), r.Report.WriteJSON); werr != nil {
				fmt.Fprintf(os.Stderr, "r3dla: %v\n", werr)
				failed = true
			}
		}
		if wantCSV {
			if werr := writeFile(filepath.Join(*outDir, r.ID+".csv"), r.Report.WriteCSV); werr != nil {
				fmt.Fprintf(os.Stderr, "r3dla: %v\n", werr)
				failed = true
			}
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dla: %v\n", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
