// Command r3dla regenerates the tables and figures of the R3-DLA paper
// (Kondguli & Huang, HPCA 2019) from the simulator in this repository.
//
// Usage:
//
//	r3dla -exp fig9a                     # one experiment
//	r3dla -exp all -budget 300000        # everything, bigger runs
//	r3dla -exp all -jobs 8               # parallel, identical output
//	r3dla -exp all -format json,csv -out results
//	r3dla -list                          # what's available
//
//	r3dla run -workload mcf -preset r3 -budget 300000
//
//	r3dla sweep -workloads mcf,libq -preset dla,r3 -boq 128,512
//	r3dla sweep -spec sweep.json -journal sweep.ndjson
//	r3dla sweep -spec sweep.json -journal sweep.ndjson -resume
//
//	r3dla explore -workloads all -boq 16,64,256,1024 -fq 16,64,256 \
//	    -strategy pareto -seed 7 -samples 64 -rounds 2
//	r3dla explore -spec explore.json -journal explore.ndjson -resume
//
//	r3dla chaos -seed 7                  # seeded chaos soak against a mini-fleet
//
// The run subcommand executes one simulation and prints its RunResult
// JSON. The sweep subcommand explores a configuration grid (axes over
// presets, feature toggles, queue sizes, skeleton versions and core
// models) across a workload set, checkpointing completed cells to
// -journal so a killed sweep resumes with -resume; see README §sweeps
// for the spec format. The explore subcommand searches spaces too large
// to sweep: the same axes enumerated lazily, sampled (seeded random or
// Latin hypercube) and searched adaptively (successive halving on IPC,
// Pareto search over IPC vs energy) — fixed seed, byte-identical output
// (README "Exploring large spaces", DESIGN.md §9). The chaos subcommand
// runs a seeded fault-injection soak — an in-process mini-fleet under
// kills, torn writes and injected errors, asserting byte-identity
// against a fault-free baseline (README "Soak testing", DESIGN.md §11).
//
// All three modes accept -backends host1:8080,host2:8080 to distribute
// work across a fleet of r3dlad instances: cells route least-loaded with
// failover to surviving backends, and stdout stays byte-identical to a
// fully local run (README "Running a cluster", DESIGN.md §7).
//
// Experiments run through the Lab client on a bounded worker pool
// (-jobs, default GOMAXPROCS); per-workload preparation and
// standard-configuration runs are shared across experiments, and the
// output is byte-identical for every -jobs value. Progress is reported
// on stderr as workloads are prepared and experiments complete; -v adds
// per-workload detail lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"r3dla/internal/lab"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "sweep":
			runSweep(os.Args[2:])
			return
		case "explore":
			runExplore(os.Args[2:])
			return
		case "run":
			runRun(os.Args[2:])
			return
		case "bench":
			runBench(os.Args[2:])
			return
		case "chaos":
			runChaos(os.Args[2:])
			return
		}
	}
	var (
		expID    = flag.String("exp", "", "experiment id (see -list), or 'all'")
		budget   = flag.Uint64("budget", 150_000, "committed instructions per simulation")
		list     = flag.Bool("list", false, "list available experiments")
		verbose  = flag.Bool("v", false, "per-workload detail")
		jobs     = flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS; fleet: 16 per backend)")
		format   = flag.String("format", "text", "comma-separated output formats: text, json, csv")
		outDir   = flag.String("out", "results", "directory for json/csv output files")
		quiet    = flag.Bool("q", false, "suppress progress reporting on stderr")
		backends = flag.String("backends", "", "comma-separated r3dlad addresses; empty = run locally")
		hedge    = flag.Duration("hedge", 0, "fleet: duplicate straggler requests onto a second backend after this delay (0 = off)")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		fmt.Print(lab.FormatExperiments())
		if *expID == "" {
			os.Exit(2)
		}
		return
	}

	wantText, wantJSON, wantCSV := parseFormats(*format)
	if wantJSON || wantCSV {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "r3dla: %v\n", err)
			os.Exit(1)
		}
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = nil
		for _, e := range lab.ListExperiments() {
			ids = append(ids, e.ID)
		}
	} else if _, ok := lab.ExperimentByID(*expID); !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n%s", *expID, lab.FormatExperiments())
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	failed := false
	// deliver consumes one ordered result. Reports go to stdout; timing
	// goes to stderr with the rest of the progress reporting, so stdout is
	// byte-identical for any -jobs value — and for any -backends fleet.
	deliver := func(r lab.ExperimentResult) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "r3dla: %s: %v\n", r.ID, r.Err)
			failed = true
			return
		}
		if wantText {
			fmt.Println(r.Report.String())
		}
		if wantJSON {
			if werr := writeFile(filepath.Join(*outDir, r.ID+".json"), r.Report.WriteJSON); werr != nil {
				fmt.Fprintf(os.Stderr, "r3dla: %v\n", werr)
				failed = true
			}
		}
		if wantCSV {
			if werr := writeFile(filepath.Join(*outDir, r.ID+".csv"), r.Report.WriteCSV); werr != nil {
				fmt.Fprintf(os.Stderr, "r3dla: %v\n", werr)
				failed = true
			}
		}
	}

	var err error
	if *backends != "" {
		// Distributed: each experiment is dispatched to a fleet of r3dlad
		// backends. Experiments run at the serving backend's budget, so
		// the fleet must advertise the client's -budget — verified up
		// front, keeping distributed stdout byte-identical to local runs.
		remotes, perr := parseBackends(*backends)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "r3dla: %v\n", perr)
			os.Exit(2)
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, "r3dla: note: -v per-workload detail is not available with -backends (it lives in the backends' logs)")
		}
		if verr := verifyFleetBudget(ctx, remotes, *budget); verr != nil {
			fmt.Fprintf(os.Stderr, "r3dla: %v\n", verr)
			os.Exit(1)
		}
		pool, perr := newFleetPool(remotes, *jobs, *hedge)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "r3dla: %v\n", perr)
			os.Exit(1)
		}
		defer pool.Close()
		done := deliver
		if !*quiet {
			done = func(r lab.ExperimentResult) {
				if r.Err == nil {
					fmt.Fprintf(os.Stderr, "[done] %s (%v)\n", r.ID, r.Elapsed.Round(time.Millisecond))
				}
				deliver(r)
			}
		}
		_, err = pool.Experiments(ctx, ids, done)
	} else {
		opts := []lab.ClientOption{lab.WithBudget(*budget), lab.WithJobs(*jobs)}
		if *verbose {
			opts = append(opts, lab.WithDetailLog(os.Stderr))
		}
		if !*quiet {
			opts = append(opts, lab.WithProgress(func(ev lab.Event) {
				switch ev.Stage {
				case "prep":
					fmt.Fprintf(os.Stderr, "  [prep] %-9s ready in %v\n", ev.Workload, ev.Elapsed.Round(time.Millisecond))
				case "run":
					if *verbose {
						fmt.Fprintf(os.Stderr, "  [run]  %-9s %-14s %v\n", ev.Workload, ev.Key, ev.Elapsed.Round(time.Millisecond))
					}
				case "exp":
					fmt.Fprintf(os.Stderr, "[done] %s (%v)\n", ev.Exp, ev.Elapsed.Round(time.Millisecond))
				}
			}))
		}
		var l *lab.Lab
		if l, err = lab.New(opts...); err == nil {
			_, err = l.Experiments(ctx, ids, deliver)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dla: %v\n", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
