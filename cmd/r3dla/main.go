// Command r3dla regenerates the tables and figures of the R3-DLA paper
// (Kondguli & Huang, HPCA 2019) from the simulator in this repository.
//
// Usage:
//
//	r3dla -exp fig9a                # one experiment
//	r3dla -exp all -budget 300000   # everything, bigger runs
//	r3dla -list                     # what's available
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"r3dla/internal/exp"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		budget  = flag.Uint64("budget", 150_000, "committed instructions per simulation")
		list    = flag.Bool("list", false, "list available experiments")
		verbose = flag.Bool("v", false, "per-workload detail")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		fmt.Print(exp.List())
		if *expID == "" {
			os.Exit(2)
		}
		return
	}

	ctx := exp.NewContext(*budget)
	ctx.Verbose = *verbose

	run := func(e exp.Experiment) {
		start := time.Now()
		out := e.Run(ctx)
		fmt.Println(out)
		fmt.Printf("[%s done in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *expID == "all" {
		for _, e := range exp.Registry {
			run(e)
		}
		return
	}
	e, ok := exp.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n%s", *expID, exp.List())
		os.Exit(2)
	}
	run(e)
}
