package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"r3dla/internal/fleet"
	"r3dla/internal/lab"
	"r3dla/internal/sweep"
)

// runRun is the `r3dla run` subcommand: one simulation — a workload, a
// configuration, a budget — executed locally or routed through a fleet of
// r3dlad backends (-backends). The result is the RunResult JSON on
// stdout, byte-identical to the service's POST /v1/runs body for the same
// request, wherever it ran.
func runRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		workload   = fs.String("workload", "", "workload name (required; see wlinfo)")
		preset     = fs.String("preset", "baseline", "configuration preset: baseline, dla, r3")
		config     = fs.String("config", "", "full ConfigSpec JSON (overrides -preset)")
		budget     = fs.Uint64("budget", 150_000, "committed instructions to simulate")
		jobs       = fs.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS; fleet: 16 per backend)")
		backends   = fs.String("backends", "", "comma-separated r3dlad addresses; empty = run locally")
		hedge      = fs.Duration("hedge", 0, "duplicate straggler requests onto a second backend after this delay (0 = off)")
		priority   = fs.String("priority", "", "fleet admission class: interactive or batch (empty = server default)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile after the run to this file")
	)
	fs.Parse(args)
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "r3dla run: -workload is required")
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dla run: %v\n", err)
		os.Exit(1)
	}

	spec := lab.ConfigSpec{Preset: *preset}
	if *config != "" {
		dec := json.NewDecoder(bytes.NewReader([]byte(*config)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			fmt.Fprintf(os.Stderr, "r3dla run: -config: %v\n", err)
			os.Exit(2)
		}
	}
	req := lab.RunRequest{Workload: *workload, Config: spec, Budget: *budget}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var runner sweep.Runner
	if *backends != "" {
		var ropts []fleet.RemoteOption
		switch *priority {
		case "", lab.PriorityInteractive, lab.PriorityBatch:
			if *priority != "" {
				ropts = append(ropts, fleet.WithPriority(*priority))
			}
		default:
			fmt.Fprintf(os.Stderr, "r3dla run: -priority must be %q or %q\n", lab.PriorityInteractive, lab.PriorityBatch)
			os.Exit(2)
		}
		remotes, err := parseBackends(*backends, ropts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "r3dla run: %v\n", err)
			os.Exit(2)
		}
		if err := verifyFleetBudget(ctx, remotes, *budget); err != nil {
			fmt.Fprintf(os.Stderr, "r3dla run: %v\n", err)
			os.Exit(1)
		}
		pool, err := newFleetPool(remotes, *jobs, *hedge)
		if err != nil {
			fmt.Fprintf(os.Stderr, "r3dla run: %v\n", err)
			os.Exit(1)
		}
		defer pool.Close()
		runner = pool
	} else {
		l, err := lab.New(lab.WithBudget(*budget), lab.WithJobs(*jobs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "r3dla run: %v\n", err)
			os.Exit(1)
		}
		runner = l
	}

	start := time.Now()
	res, err := runner.Run(ctx, req)
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintf(os.Stderr, "r3dla run: %v\n", perr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dla run: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "r3dla run: %s in %v\n", *workload, time.Since(start).Round(time.Millisecond))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintf(os.Stderr, "r3dla run: %v\n", err)
		os.Exit(1)
	}
}
