// Command skelgen inspects the skeletons generated for a workload: per
// version sizes, T1 marks, forced branches, and (with -dump) the masked
// listing.
package main

import (
	"flag"
	"fmt"
	"os"

	"r3dla/internal/lab"
)

func main() {
	var (
		name  = flag.String("w", "mcf", "workload name")
		train = flag.Uint64("train", 80_000, "training-run instruction budget")
		dump  = flag.Bool("dump", false, "dump the baseline skeleton listing")
	)
	flag.Parse()

	info, err := lab.DescribeSkeletons(*name, *train, *dump)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skelgen: %v; available:\n", err)
		for _, w := range lab.ListWorkloads() {
			fmt.Fprintf(os.Stderr, "  %s\n", w.Name)
		}
		os.Exit(2)
	}

	fmt.Printf("workload %s (%s): %d static instructions\n\n", info.Workload, info.Suite, info.StaticInsts)
	fmt.Println("baseline:", info.Baseline)
	for i, v := range info.Versions {
		fmt.Printf("version %d: %s\n", i, v)
	}
	fmt.Printf("T1 S-bit marks: %d\n", info.SBitMarks)

	if *dump {
		fmt.Println("\npc  mask  inst")
		for _, line := range info.Listing {
			fmt.Println(line)
		}
	}
}
