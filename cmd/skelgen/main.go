// Command skelgen inspects the skeletons generated for a workload: per
// version sizes, T1 marks, forced branches, and (with -dump) the masked
// listing.
package main

import (
	"flag"
	"fmt"
	"os"

	"r3dla/internal/core"
	"r3dla/internal/workloads"
)

func main() {
	var (
		name  = flag.String("w", "mcf", "workload name")
		train = flag.Uint64("train", 80_000, "training-run instruction budget")
		dump  = flag.Bool("dump", false, "dump the baseline skeleton listing")
	)
	flag.Parse()

	w := workloads.ByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q; available: %v\n", *name, workloads.Names())
		os.Exit(2)
	}
	prog, setup := w.Build(1)
	prof := core.Collect(prog, setup, *train)
	set := core.Generate(prog, prof)

	fmt.Printf("workload %s (%s): %d static instructions\n\n", w.Name, w.Suite, len(prog.Insts))
	fmt.Println("baseline:", set.Baseline.Describe())
	for i, v := range set.Versions {
		fmt.Printf("version %d: %s\n", i, v.Describe())
	}
	marks := 0
	for _, s := range set.SBits {
		if s {
			marks++
		}
	}
	fmt.Printf("T1 S-bit marks: %d\n", marks)

	if *dump {
		fmt.Println("\npc  mask  inst")
		for pc, in := range prog.Insts {
			mark := " "
			if set.Baseline.Include[pc] {
				mark = "*"
			}
			s := ""
			if set.SBits[pc] {
				s = " [S]"
			}
			f := ""
			if t, ok := set.Baseline.Forced(pc); ok {
				f = fmt.Sprintf(" [forced %v]", t)
			}
			fmt.Printf("%4d  %s  %v%s%s\n", pc, mark, in.String(), s, f)
		}
	}
}
