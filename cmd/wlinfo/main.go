// Command wlinfo characterizes the workload suite: dynamic instruction
// mixes, branch predictability and cache-miss profiles under the baseline
// core — a quick sanity view of what each benchmark stresses.
package main

import (
	"flag"
	"fmt"
	"os"

	"r3dla/internal/lab"
)

func main() {
	budget := flag.Uint64("budget", 60_000, "instructions per characterization run")
	flag.Parse()

	fmt.Printf("%-10s %-6s %6s %6s %6s %8s %8s %8s\n",
		"name", "suite", "load%", "store%", "br%", "L1mpki", "L2mpki", "strided")
	for _, w := range lab.ListWorkloads() {
		st, err := lab.Characterize(w.Name, *budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wlinfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %-6s %5.1f%% %5.1f%% %5.1f%% %8.2f %8.2f %8d\n",
			st.Name, st.Suite, st.LoadPct, st.StorePct, st.BranchPct,
			st.L1MPKI, st.L2MPKI, st.StridedLoads)
	}
}
