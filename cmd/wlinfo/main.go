// Command wlinfo characterizes the workload suite: dynamic instruction
// mixes, branch predictability and cache-miss profiles under the baseline
// core — a quick sanity view of what each benchmark stresses.
package main

import (
	"flag"
	"fmt"

	"r3dla/internal/core"
	"r3dla/internal/isa"
	"r3dla/internal/workloads"
)

func main() {
	budget := flag.Uint64("budget", 60_000, "instructions per characterization run")
	flag.Parse()

	fmt.Printf("%-10s %-6s %6s %6s %6s %8s %8s %8s\n",
		"name", "suite", "load%", "store%", "br%", "L1mpki", "L2mpki", "strided")
	for _, w := range workloads.All() {
		prog, setup := w.Build(1)
		prof := core.Collect(prog, setup, *budget)

		var loads, stores, branches, total uint64
		var l1m, l2m uint64
		strided := 0
		for pc := range prog.Insts {
			st := &prof.PCs[pc]
			total += st.Exec
			op := prog.Insts[pc].Op
			switch {
			case op.IsLoad():
				loads += st.Exec
				l1m += st.L1Miss
				l2m += st.L2Miss
				if st.Strided() {
					strided++
				}
			case op.IsStore():
				stores += st.Exec
			case op.Class() == isa.ClassBranch:
				branches += st.Exec
			}
		}
		if total == 0 {
			continue
		}
		p := func(x uint64) float64 { return float64(x) / float64(total) * 100 }
		fmt.Printf("%-10s %-6s %5.1f%% %5.1f%% %5.1f%% %8.2f %8.2f %8d\n",
			w.Name, w.Suite, p(loads), p(stores), p(branches),
			float64(l1m)/float64(total)*1000, float64(l2m)/float64(total)*1000, strided)
	}
}
