// Command r3dlad is the long-lived simulation service: an HTTP/JSON API
// over the r3dla Lab client. All requests share one Lab, so per-workload
// preparation and configuration runs are computed once (singleflight)
// and served from cache afterwards, and total compute is bounded by one
// server-wide worker pool.
//
// Usage:
//
//	r3dlad                                   # serve on :8080
//	r3dlad -addr :9000 -budget 300000 -jobs 8
//
// Endpoints:
//
//	GET  /v1/healthz              liveness + request counters
//	GET  /v1/stats                live load: inflight/capacity, budget caps, cache-miss runs
//	GET  /metrics                 the same counters in Prometheus text exposition format
//	GET  /v1/experiments          regenerable paper artifacts
//	GET  /v1/workloads            the evaluation suite
//	POST /v1/experiments/{id}     regenerate one artifact (?stream=1: NDJSON progress)
//	POST /v1/runs                 one simulation (RunRequest JSON body)
//	POST /v1/sweeps               parameter sweep (sweep.Spec JSON body; NDJSON cell stream)
//	POST /v1/explore              adaptive exploration (dse.Spec JSON body; NDJSON cell stream)
//
// With -result-cache the server persists every finished run result in a
// content-addressed on-disk store: an identical request after a restart
// is served byte-for-byte from disk without simulating, and concurrent
// identical requests from different clients coalesce onto one
// simulation. -inflight capacity is split fairly between priority
// classes (the X-R3DLA-Priority header: interactive or batch).
//
// A disconnecting client cancels its in-flight simulation cooperatively
// (accounted as a 499 in /v1/healthz counters); SIGINT/SIGTERM drain the
// server gracefully. Several r3dlad instances form a fleet: point
// `r3dla run|exp|sweep -backends host1:8080,host2:8080` at them and the
// client routes work least-loaded (balancing on /v1/stats), retries
// failed cells on surviving backends, and produces output byte-identical
// to a single-process run (README "Running a cluster", DESIGN.md §7).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"r3dla/internal/dse"
	"r3dla/internal/lab"
	"r3dla/internal/resultstore"
	"r3dla/internal/sweep"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		budget    = flag.Uint64("budget", 150_000, "default committed instructions per simulation")
		jobs      = flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		maxBudget = flag.Uint64("max-budget", 10_000_000, "largest per-request budget override (0 = unlimited)")
		inflight  = flag.Int("inflight", 64, "max concurrently admitted simulation requests (0 = unlimited)")
		prepDir   = flag.String("prep-cache", "", "directory persisting preparation artifacts across restarts (empty = off)")
		resDir    = flag.String("result-cache", "", "directory persisting finished run results across restarts (empty = off)")
		resMax    = flag.Int("result-cache-max", 4096, "max entries the result cache retains before LRU eviction (0 = unlimited)")
	)
	flag.Parse()

	opts := []lab.ClientOption{lab.WithBudget(*budget), lab.WithJobs(*jobs)}
	if *prepDir != "" {
		opts = append(opts, lab.WithPrepCache(*prepDir))
	}
	l, err := lab.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "r3dlad: %v\n", err)
		os.Exit(1)
	}
	srvOpts := []lab.ServerOption{lab.WithMaxBudget(*maxBudget), lab.WithMaxInflight(*inflight)}
	if *resDir != "" {
		st, err := resultstore.Open(*resDir, lab.ResultsFingerprint, *resMax)
		if err != nil {
			fmt.Fprintf(os.Stderr, "r3dlad: %v\n", err)
			os.Exit(1)
		}
		srvOpts = append(srvOpts, lab.WithResultStore(st))
	}
	h := lab.NewServer(l, srvOpts...)
	h.Handle("POST /v1/sweeps", sweep.NewHandler(l, h))
	h.Handle("POST /v1/explore", dse.NewHandler(l, h))
	srv := &http.Server{
		Addr:        *addr,
		Handler:     h,
		ReadTimeout: 30 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "r3dlad: serving on %s (budget %d, jobs %d)\n", *addr, *budget, *jobs)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "r3dlad: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "r3dlad: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "r3dlad: shutdown: %v\n", err)
		os.Exit(1)
	}
}
