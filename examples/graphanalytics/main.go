// Graph analytics under look-ahead: runs the CRONO-style graph suite
// (BFS, SSSP, PageRank, connected components, triangle counting) on the
// baseline core, DLA and R3-DLA, reporting IPC, L1 MPKI and look-ahead
// health — the workload class whose gather misses pattern prefetchers
// cannot cover but look-ahead can.
package main

import (
	"fmt"

	"r3dla"
)

func main() {
	const train = 60_000
	const budget = 150_000

	fmt.Printf("%-10s %10s %10s %10s %12s %10s\n",
		"graph", "BL IPC", "DLA IPC", "R3 IPC", "R3 speedup", "reboots")
	for _, w := range r3dla.Workloads() {
		if w.Suite != "crono" {
			continue
		}
		tp, ts := w.Build(1)
		prof := r3dla.Profile(tp, ts, train)
		ep, es := w.Build(2)
		set := r3dla.Skeletons(ep, prof)

		bl := r3dla.NewSystem(ep, es, set, prof, r3dla.BaselineOptions()).Run(budget)
		dla := r3dla.NewSystem(ep, es, set, prof, r3dla.DLAOptions()).Run(budget)
		r3 := r3dla.NewSystem(ep, es, set, prof, r3dla.R3Options()).Run(budget)

		fmt.Printf("%-10s %10.3f %10.3f %10.3f %11.2fx %10d\n",
			w.Name, bl.IPC(), dla.IPC(), r3.IPC(), r3.IPC()/bl.IPC(), r3.Reboots)
	}
	fmt.Println("\nL1D demand-miss profile (baseline vs R3-DLA), per kilo-instruction:")
	for _, w := range r3dla.Workloads() {
		if w.Suite != "crono" {
			continue
		}
		tp, ts := w.Build(1)
		prof := r3dla.Profile(tp, ts, train)
		ep, es := w.Build(2)
		set := r3dla.Skeletons(ep, prof)
		bl := r3dla.NewSystem(ep, es, set, prof, r3dla.BaselineOptions()).Run(budget)
		r3 := r3dla.NewSystem(ep, es, set, prof, r3dla.R3Options()).Run(budget)
		fmt.Printf("  %-10s %6.1f -> %6.1f\n", w.Name,
			bl.MTMem.L1D.Stats.MPKI(bl.MT.Committed),
			r3.MTMem.L1D.Stats.MPKI(r3.MT.Committed))
	}
}
