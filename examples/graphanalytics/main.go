// Graph analytics under look-ahead: runs the CRONO-style graph suite
// (BFS, SSSP, PageRank, connected components, triangle counting) on the
// baseline core, DLA and R3-DLA, reporting IPC, L1 MPKI and look-ahead
// health — the workload class whose gather misses pattern prefetchers
// cannot cover but look-ahead can.
package main

import (
	"context"
	"fmt"
	"log"

	"r3dla"
)

func main() {
	ctx := context.Background()
	l, err := r3dla.NewLab(r3dla.WithBudget(150_000), r3dla.WithTrainBudget(60_000))
	if err != nil {
		log.Fatal(err)
	}
	blCfg := r3dla.MustConfig(r3dla.Baseline)
	dlaCfg := r3dla.MustConfig(r3dla.DLA)
	r3Cfg := r3dla.MustConfig(r3dla.R3)

	run := func(name string, cfg r3dla.Config) *r3dla.RunResult {
		r, err := l.RunConfig(ctx, name, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	var graphs []string
	for _, w := range r3dla.ListWorkloads() {
		if w.Suite == "crono" {
			graphs = append(graphs, w.Name)
		}
	}

	fmt.Printf("%-10s %10s %10s %10s %12s %10s\n",
		"graph", "BL IPC", "DLA IPC", "R3 IPC", "R3 speedup", "reboots")
	for _, name := range graphs {
		bl := run(name, blCfg)
		dla := run(name, dlaCfg)
		r3 := run(name, r3Cfg)
		fmt.Printf("%-10s %10.3f %10.3f %10.3f %11.2fx %10d\n",
			name, bl.IPC, dla.IPC, r3.IPC, r3.IPC/bl.IPC, r3.Reboots)
	}

	fmt.Println("\nL1D demand-miss profile (baseline vs R3-DLA), per kilo-instruction:")
	for _, name := range graphs {
		// Served from the Lab's result cache — no re-simulation.
		bl := run(name, blCfg)
		r3 := run(name, r3Cfg)
		fmt.Printf("  %-10s %6.1f -> %6.1f\n", name, bl.L1DMPKI, r3.L1DMPKI)
	}
}
