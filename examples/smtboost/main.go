// SMT boosting: the Sec. IV-B3 usage scenario. A wide SMT-capable core
// can either run one thread wide (FC), split into two half-cores running
// a DLA pair (look-ahead boosting), or run two copies for throughput.
// This example compares the three on a few representative workloads.
package main

import (
	"context"
	"fmt"
	"log"

	"r3dla"
)

func main() {
	const budget = 100_000
	ctx := context.Background()
	l, err := r3dla.NewLab(r3dla.WithBudget(budget))
	if err != nil {
		log.Fatal(err)
	}

	half := r3dla.HalfCoreConfig()
	wide := r3dla.WideCoreConfig()
	dlaCfg := r3dla.MustConfig(r3dla.DLA, r3dla.WithCores(half))
	r3Cfg := r3dla.MustConfig(r3dla.R3, r3dla.WithCores(half))

	fmt.Printf("%-8s %8s %8s %8s   (normalized to half-core)\n", "bench", "FC", "DLA", "R3-DLA")
	for _, name := range []string{"mcf", "libq", "bfs", "md5", "cg"} {
		p, err := l.Prepare(ctx, name)
		if err != nil {
			log.Fatal(err)
		}

		hc, err := l.CoreIPC(ctx, p, half, budget, true)
		if err != nil {
			log.Fatal(err)
		}
		fc, err := l.CoreIPC(ctx, p, wide, budget, true)
		if err != nil {
			log.Fatal(err)
		}

		dla, err := l.RunPrepared(ctx, p, dlaCfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		r3, err := l.RunPrepared(ctx, p, r3Cfg, 0)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8s %7.2fx %7.2fx %7.2fx\n",
			name, fc/hc, dla.IPC/hc, r3.IPC/hc)
	}
	fmt.Println("\nFC = whole wide core on one thread; DLA/R3-DLA = the same core")
	fmt.Println("split into two half-cores running a look-ahead pair.")
}
