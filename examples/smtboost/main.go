// SMT boosting: the Sec. IV-B3 usage scenario. A wide SMT-capable core
// can either run one thread wide (FC), split into two half-cores running
// a DLA pair (look-ahead boosting), or run two copies for throughput.
// This example compares the three on a few representative workloads.
package main

import (
	"fmt"

	"r3dla"
	"r3dla/internal/exp"
	"r3dla/internal/pipeline"
)

func main() {
	const budget = 100_000
	ctx := exp.NewContext(budget)

	half := pipeline.HalfConfig()
	wide := pipeline.WideConfig()

	fmt.Printf("%-8s %8s %8s %8s   (normalized to half-core)\n", "bench", "FC", "DLA", "R3-DLA")
	for _, name := range []string{"mcf", "libq", "bfs", "md5", "cg"} {
		p := ctx.Prep(name)

		hc, _ := exp.BaselineMetricsOn(p, half, budget, true)
		fc, _ := exp.BaselineMetricsOn(p, wide, budget, true)

		dlaOpt := r3dla.DLAOptions()
		dlaOpt.CoreCfg = &half
		dla := ctx.RunDLA(p, dlaOpt)

		r3Opt := r3dla.R3Options()
		r3Opt.CoreCfg = &half
		r3 := ctx.RunDLA(p, r3Opt)

		base := hc.IPC()
		fmt.Printf("%-8s %7.2fx %7.2fx %7.2fx\n",
			name, fc.IPC()/base, dla.IPC()/base, r3.IPC()/base)
	}
	fmt.Println("\nFC = whole wide core on one thread; DLA/R3-DLA = the same core")
	fmt.Println("split into two half-cores running a look-ahead pair.")
}
