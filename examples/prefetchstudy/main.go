// Prefetch study: who covers which misses? Compares a hardware stride
// prefetcher against the T1 offload engine on strided and irregular
// workloads — the Sec. IV-C1 story: T1 is a dumb FSM carrying out orders
// from the software, so it beats a general-purpose stride prefetcher on
// both performance and traffic.
package main

import (
	"fmt"

	"r3dla"
	"r3dla/internal/core"
)

func main() {
	const train = 60_000
	const budget = 150_000

	cfgs := []struct {
		name string
		opt  core.Options
	}{
		{"DLA", r3dla.DLAOptions()},
		{"DLA+Stride", core.Options{WithBOP: true, WithStride: true}},
		{"DLA+T1", core.Options{WithBOP: true, T1: true}},
	}

	for _, name := range []string{"libq", "rgbyuv", "mg", "mcf", "sjeng"} {
		w := r3dla.Workload(name)
		tp, ts := w.Build(1)
		prof := r3dla.Profile(tp, ts, train)
		ep, es := w.Build(2)
		set := r3dla.Skeletons(ep, prof)

		fmt.Printf("%s:\n", name)
		var dlaIPC, dlaTraffic float64
		for i, cfg := range cfgs {
			r := r3dla.NewSystem(ep, es, set, prof, cfg.opt).Run(budget)
			traffic := float64(r.Shared.DRAM.Traffic())
			if i == 0 {
				dlaIPC, dlaTraffic = r.IPC(), traffic
			}
			fmt.Printf("  %-11s IPC %6.3f (%.2fx)  traffic %.2fx  LT insts %d\n",
				cfg.name, r.IPC(), r.IPC()/dlaIPC, traffic/dlaTraffic, r.LT.Committed)
		}
	}
}
