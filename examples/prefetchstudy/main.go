// Prefetch study: who covers which misses? Compares a hardware stride
// prefetcher against the T1 offload engine on strided and irregular
// workloads — the Sec. IV-C1 story: T1 is a dumb FSM carrying out orders
// from the software, so it beats a general-purpose stride prefetcher on
// both performance and traffic.
package main

import (
	"context"
	"fmt"
	"log"

	"r3dla"
)

func main() {
	ctx := context.Background()
	l, err := r3dla.NewLab(r3dla.WithBudget(150_000), r3dla.WithTrainBudget(60_000))
	if err != nil {
		log.Fatal(err)
	}

	cfgs := []struct {
		name string
		cfg  r3dla.Config
	}{
		{"DLA", r3dla.MustConfig(r3dla.DLA)},
		{"DLA+Stride", r3dla.MustConfig(r3dla.DLA, r3dla.WithStride(true))},
		{"DLA+T1", r3dla.MustConfig(r3dla.DLA, r3dla.WithT1(true))},
	}

	for _, name := range []string{"libq", "rgbyuv", "mg", "mcf", "sjeng"} {
		fmt.Printf("%s:\n", name)
		var dlaIPC, dlaTraffic float64
		for i, cfg := range cfgs {
			r, err := l.RunConfig(ctx, name, cfg.cfg, 0)
			if err != nil {
				log.Fatal(err)
			}
			traffic := float64(r.DRAMTraffic)
			if i == 0 {
				dlaIPC, dlaTraffic = r.IPC, traffic
			}
			fmt.Printf("  %-11s IPC %6.3f (%.2fx)  traffic %.2fx  LT insts %d\n",
				cfg.name, r.IPC, r.IPC/dlaIPC, traffic/dlaTraffic, r.LT.Committed)
		}
	}
}
