// Quickstart: assemble a small program with the builder, prepare it
// (profile + skeleton generation), and compare the baseline core against
// DLA and R3-DLA through the Lab client — the minimal end-to-end tour of
// the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"r3dla"
	"r3dla/internal/isa"
)

// makeProgram builds a gather loop: sum += table[index[i]] over a large
// index array — the canonical pattern look-ahead accelerates (the gather
// address is computable far ahead of the data).
func makeProgram() (*r3dla.Program, func(*r3dla.Memory)) {
	const n = 1 << 16
	b := r3dla.NewBuilder("quickstart")
	b.Li(1, 1<<30) // outer repetitions (budget-bounded)
	b.Label("outer")
	b.Li(2, 0x100000) // index array
	b.Li(3, n)
	b.Label("loop")
	b.Ld(4, 2, 0) // idx = index[i]
	b.I(isa.SHLI, 4, 4, 3)
	b.Li(5, 0x4000000)
	b.R(isa.ADD, 5, 5, 4)
	b.Ld(6, 5, 0) // v = table[idx]  (random gather)
	b.R(isa.ADD, 7, 7, 6)
	// Some "real work" on v that the skeleton strips:
	b.R(isa.MUL, 8, 6, 7)
	b.I(isa.SHRI, 9, 8, 3)
	b.R(isa.XOR, 8, 8, 9)
	b.R(isa.ADD, 10, 10, 8)
	b.R(isa.MUL, 10, 10, 6)
	b.I(isa.ADDI, 10, 10, 7)
	b.Li(9, 0x9000000)
	b.St(10, 9, 0)
	b.I(isa.ADDI, 2, 2, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Br(isa.BNE, 3, isa.RegZero, "loop")
	b.I(isa.ADDI, 1, 1, -1)
	b.Br(isa.BNE, 1, isa.RegZero, "outer")
	b.Halt()
	prog := b.Program()

	setup := func(m *r3dla.Memory) {
		state := uint64(12345)
		for i := 0; i < n; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			m.Write(uint64(0x100000+i*8), (state>>33)%(1<<20))
		}
	}
	return prog, setup
}

func main() {
	ctx := context.Background()
	prog, setup := makeProgram()

	fmt.Println("preparing (training run + skeleton generation)...")
	p := r3dla.PrepareProgram("quickstart", prog, setup, 80_000)
	l, err := r3dla.NewLab(r3dla.WithBudget(150_000))
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, preset r3dla.Preset) float64 {
		cfg, err := r3dla.NewConfig(preset)
		if err != nil {
			log.Fatal(err)
		}
		r, err := l.RunPrepared(ctx, p, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s IPC %.3f", name, r.IPC)
		if r.LT != nil {
			fmt.Printf("   (LT executed %d insts, %d reboots)", r.LT.Committed, r.Reboots)
		}
		fmt.Println()
		return r.IPC
	}

	base := run("baseline", r3dla.Baseline)
	dla := run("DLA", r3dla.DLA)
	r3 := run("R3-DLA", r3dla.R3)

	fmt.Printf("\nspeedup: DLA %.2fx, R3-DLA %.2fx\n", dla/base, r3/base)
}
