// Package r3dla is a from-scratch Go reproduction of "R3-DLA (Reduce,
// Reuse, Recycle): A More Efficient Approach to Decoupled Look-Ahead
// Architectures" (Kondguli & Huang, HPCA 2019).
//
// The package is a facade over the simulator internals. A typical use:
//
//	w := r3dla.Workload("mcf")
//	prog, trainSetup := w.Build(1)                  // training input
//	prof := r3dla.Profile(prog, trainSetup, 100000) // training run
//	evalProg, evalSetup := w.Build(2)               // evaluation input
//	set := r3dla.Skeletons(evalProg, prof)
//	sys := r3dla.NewSystem(evalProg, evalSetup, set, prof, r3dla.R3Options())
//	res := sys.Run(200000)
//	fmt.Println(res.IPC())
//
// Experiments reproducing each table/figure of the paper are exposed via
// NewExperiments/RunExperiments and the cmd/r3dla command; they run
// concurrently on a bounded worker pool with deterministic output.
package r3dla

import (
	"context"

	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/exp"
	"r3dla/internal/isa"
	"r3dla/internal/pipeline"
	"r3dla/internal/workloads"
)

// Re-exported core types. See the internal packages for full
// documentation of each.
type (
	// Program is a static program in the simulator's ISA.
	Program = isa.Program
	// Builder assembles Programs.
	Builder = isa.Builder
	// Memory is the functional data memory.
	Memory = emu.Memory
	// SystemOptions selects the DLA configuration.
	SystemOptions = core.Options
	// System is a coupled look-ahead + main-thread machine.
	System = core.System
	// Results carries a run's metrics.
	Results = core.Results
	// WorkloadSpec is one benchmark of the evaluation suite.
	WorkloadSpec = workloads.Workload
	// TrainingProfile holds per-PC training statistics.
	TrainingProfile = core.Profile
	// SkeletonSet is the generated look-ahead program versions.
	SkeletonSet = core.Set
	// CoreConfig sizes a pipeline (Table I by default).
	CoreConfig = pipeline.Config
	// ExperimentContext drives the table/figure regeneration.
	ExperimentContext = exp.Context
)

// NewBuilder starts assembling a program.
func NewBuilder(name string) *Builder { return isa.NewBuilder(name) }

// NewMemory returns an empty data memory.
func NewMemory() *Memory { return emu.NewMemory() }

// Workload returns a named benchmark (nil if unknown); Workloads lists
// all 25.
func Workload(name string) *WorkloadSpec { return workloads.ByName(name) }

// Workloads returns the full evaluation suite.
func Workloads() []*WorkloadSpec { return workloads.All() }

// Profile performs a training run (Appendix A's profiling pass).
func Profile(p *Program, setup func(*Memory), budget uint64) *TrainingProfile {
	return core.Collect(p, setup, budget)
}

// Skeletons generates the look-ahead skeleton versions for a program.
func Skeletons(p *Program, prof *TrainingProfile) *SkeletonSet {
	return core.Generate(p, prof)
}

// NewSystem builds a DLA system; see core.Options for the configuration
// space.
func NewSystem(p *Program, setup func(*Memory), set *SkeletonSet, prof *TrainingProfile, opt SystemOptions) *System {
	return core.NewSystem(p, setup, set, prof, opt)
}

// BaselineOptions returns the plain single-core configuration (Table I +
// BOP) every experiment normalizes against.
func BaselineOptions() SystemOptions {
	return SystemOptions{Disable: true, WithBOP: true}
}

// DLAOptions returns the baseline decoupled look-ahead configuration.
func DLAOptions() SystemOptions { return core.DLAOptions() }

// R3Options returns the full R3-DLA configuration (T1 + value reuse +
// fetch buffer + recycling).
func R3Options() SystemOptions { return core.R3Options() }

// DefaultCoreConfig returns the Table I processing node.
func DefaultCoreConfig() CoreConfig { return pipeline.DefaultConfig() }

// NewExperiments returns a context for regenerating the paper's tables
// and figures (budget = committed instructions per simulation; 0 picks
// the default). Set its Jobs field to bound the worker pool the runs are
// dispatched to; the context is safe for concurrent use.
func NewExperiments(budget uint64) *ExperimentContext { return exp.NewContext(budget) }

// ExperimentReport is the structured (tables of rows) result of one
// experiment; it renders as text and serializes to JSON/CSV.
type ExperimentReport = exp.Report

// ExperimentResult is one experiment's outcome from RunExperiments
// (report or error, plus timing).
type ExperimentResult = exp.Result

// ExperimentEvent is a progress notification; assign a func(ExperimentEvent)
// to ExperimentContext.Progress to observe preparation/run/experiment
// completion.
type ExperimentEvent = exp.Event

// RunExperiment regenerates one artifact ("fig9a", "tab2", ...; see
// ExperimentIDs) and returns its text rendering.
func RunExperiment(ctx *ExperimentContext, id string) (string, bool) {
	e, ok := exp.ByID(id)
	if !ok {
		return "", false
	}
	return e.Run(ctx).String(), true
}

// RunExperiments regenerates several artifacts concurrently on ctx's
// worker pool, returning structured reports in id order (deterministic
// regardless of scheduling). Cancellation via cctx aborts outstanding
// work.
func RunExperiments(cctx context.Context, ctx *ExperimentContext, ids []string) ([]ExperimentResult, error) {
	return exp.Run(cctx, ctx, ids, nil)
}

// ExperimentIDs lists the regenerable artifacts.
func ExperimentIDs() []string { return exp.IDs() }
