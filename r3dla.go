// Package r3dla is a from-scratch Go reproduction of "R3-DLA (Reduce,
// Reuse, Recycle): A More Efficient Approach to Decoupled Look-Ahead
// Architectures" (Kondguli & Huang, HPCA 2019).
//
// The primary API is the Lab client: explicit, validated configurations
// built from presets plus functional options, and typed requests that
// resolve through a memoized (singleflight) result cache on a bounded
// worker pool. A typical use:
//
//	l, _ := r3dla.NewLab(r3dla.WithBudget(200_000), r3dla.WithJobs(8))
//	cfg, _ := r3dla.NewConfig(r3dla.R3, r3dla.WithBOQ(1024))
//	res, _ := l.RunConfig(ctx, "mcf", cfg, 0)
//	fmt.Println(res.IPC)
//
// Experiments reproducing each table/figure of the paper run through the
// same client (Lab.Experiment / Lab.Experiments), the cmd/r3dla command,
// or the cmd/r3dlad HTTP service. Low-level building blocks (programs,
// profiling, skeleton generation, NewSystem) remain available for
// harness-style instrumentation.
package r3dla

import (
	"r3dla/internal/core"
	"r3dla/internal/emu"
	"r3dla/internal/isa"
	"r3dla/internal/lab"
	"r3dla/internal/pipeline"
	"r3dla/internal/workloads"
)

// Re-exported core types. See the internal packages for full
// documentation of each.
type (
	// Program is a static program in the simulator's ISA.
	Program = isa.Program
	// Builder assembles Programs.
	Builder = isa.Builder
	// Memory is the functional data memory.
	Memory = emu.Memory
	// SystemOptions selects the DLA configuration (low-level; prefer
	// building a Config through NewConfig and Config.SystemOptions).
	SystemOptions = core.Options
	// System is a coupled look-ahead + main-thread machine.
	System = core.System
	// Results carries a run's metrics.
	Results = core.Results
	// WorkloadSpec is one benchmark of the evaluation suite.
	WorkloadSpec = workloads.Workload
	// TrainingProfile holds per-PC training statistics.
	TrainingProfile = core.Profile
	// SkeletonSet is the generated look-ahead program versions.
	SkeletonSet = core.Set
	// CoreConfig sizes a pipeline (Table I by default).
	CoreConfig = pipeline.Config
)

// The Lab API, re-exported from the lab layer.
type (
	// Lab is the simulation client: budgets, a bounded worker pool, and
	// singleflight memoization of preparation and runs.
	Lab = lab.Lab
	// ClientOption configures a Lab (WithBudget, WithJobs, …).
	ClientOption = lab.ClientOption
	// Preset is an immutable named base configuration.
	Preset = lab.Preset
	// Config is a validated system configuration (NewConfig).
	Config = lab.Config
	// Option is one functional configuration option (WithT1, WithBOQ, …).
	Option = lab.Option
	// ConfigSpec is the serializable preset-plus-overrides wire form.
	ConfigSpec = lab.ConfigSpec
	// RunRequest asks for one simulation.
	RunRequest = lab.RunRequest
	// RunResult is the architectural outcome of one simulation.
	RunResult = lab.RunResult
	// ExperimentRequest asks for one paper artifact by id.
	ExperimentRequest = lab.ExperimentRequest
	// ExperimentInfo names one regenerable artifact.
	ExperimentInfo = lab.ExperimentInfo
	// ExperimentResult is one experiment's outcome (report or error).
	ExperimentResult = lab.ExperimentResult
	// Report is the structured (tables of rows) result of one experiment;
	// it renders as text and serializes to JSON/CSV.
	Report = lab.Report
	// Event is a progress notification from the engine.
	Event = lab.Event
	// WorkloadInfo describes one benchmark of the evaluation suite.
	WorkloadInfo = lab.WorkloadInfo
	// Prepared is a workload ready to run (program + profile + skeletons).
	Prepared = lab.Prepared
)

// The named presets: plain single-core baseline, classic decoupled
// look-ahead, and the full R3-DLA machine.
var (
	Baseline = lab.Baseline
	DLA      = lab.DLA
	R3       = lab.R3
)

// Functional options, re-exported from the lab layer. Configuration
// options (for NewConfig):
var (
	WithT1           = lab.WithT1
	WithValueReuse   = lab.WithValueReuse
	WithFetchBuffer  = lab.WithFetchBuffer
	WithRecycle      = lab.WithRecycle
	WithBOP          = lab.WithBOP
	WithStride       = lab.WithStride
	WithPrefetchOnly = lab.WithPrefetchOnly
	WithBOQ          = lab.WithBOQ
	WithFQ           = lab.WithFQ
	WithVQ           = lab.WithVQ
	WithRebootCost   = lab.WithRebootCost
	WithTrials       = lab.WithTrials
	WithVersion      = lab.WithVersion
	WithStaticLCT    = lab.WithStaticLCT
	WithCores        = lab.WithCores
	WithLTCore       = lab.WithLTCore
)

// Client options (for NewLab):
var (
	WithBudget      = lab.WithBudget
	WithTrainBudget = lab.WithTrainBudget
	WithJobs        = lab.WithJobs
	WithProgress    = lab.WithProgress
	WithDetailLog   = lab.WithDetailLog
)

// NewLab builds a Lab client.
func NewLab(opts ...ClientOption) (*Lab, error) { return lab.New(opts...) }

// NewConfig builds a validated configuration from a preset plus options.
func NewConfig(p Preset, opts ...Option) (Config, error) { return lab.NewConfig(p, opts...) }

// MustConfig is NewConfig for static configurations; it panics on error.
func MustConfig(p Preset, opts ...Option) Config { return lab.MustConfig(p, opts...) }

// ListExperiments lists the regenerable paper artifacts in presentation
// order.
func ListExperiments() []ExperimentInfo { return lab.ListExperiments() }

// ExperimentIDs lists the regenerable artifact ids, sorted.
func ExperimentIDs() []string { return lab.ExperimentIDs() }

// ListWorkloads lists the evaluation suite.
func ListWorkloads() []WorkloadInfo { return lab.ListWorkloads() }

// PrepareProgram profiles a caller-supplied program and generates its
// skeletons, yielding material Lab.RunPrepared accepts. name keys the
// Lab's run cache.
func PrepareProgram(name string, prog *Program, setup func(*Memory), trainBudget uint64) *Prepared {
	return lab.PrepareProgram(name, prog, setup, trainBudget)
}

// Characterize profiles a named workload on the training input and
// summarizes its instruction mix and miss profile.
func Characterize(name string, budget uint64) (*lab.WorkloadStats, error) {
	return lab.Characterize(name, budget)
}

// DescribeSkeletons generates and summarizes a workload's skeleton set.
func DescribeSkeletons(name string, trainBudget uint64, listing bool) (*lab.SkeletonInfo, error) {
	return lab.DescribeSkeletons(name, trainBudget, listing)
}

// NewBuilder starts assembling a program.
func NewBuilder(name string) *Builder { return isa.NewBuilder(name) }

// NewMemory returns an empty data memory.
func NewMemory() *Memory { return emu.NewMemory() }

// Workload returns a named benchmark (nil if unknown); Workloads lists
// all 25.
func Workload(name string) *WorkloadSpec { return workloads.ByName(name) }

// Workloads returns the full evaluation suite.
func Workloads() []*WorkloadSpec { return workloads.All() }

// Profile performs a training run (Appendix A's profiling pass).
func Profile(p *Program, setup func(*Memory), budget uint64) *TrainingProfile {
	return core.Collect(p, setup, budget)
}

// Skeletons generates the look-ahead skeleton versions for a program.
func Skeletons(p *Program, prof *TrainingProfile) *SkeletonSet {
	return core.Generate(p, prof)
}

// NewSystem builds a DLA system (low-level; most callers want
// Lab.RunConfig or Lab.RunPrepared, which add caching and cancellation).
// Configurations should come from Config.SystemOptions rather than
// hand-built literals.
func NewSystem(p *Program, setup func(*Memory), set *SkeletonSet, prof *TrainingProfile, opt SystemOptions) *System {
	return core.NewSystem(p, setup, set, prof, opt)
}

// BaselineOptions returns the plain single-core configuration every
// experiment normalizes against.
//
// Deprecated: build configurations through the Lab API instead —
// MustConfig(Baseline).SystemOptions() is the equivalent.
func BaselineOptions() SystemOptions { return lab.MustConfig(lab.Baseline).SystemOptions() }

// DLAOptions returns the baseline decoupled look-ahead configuration.
//
// Deprecated: build configurations through the Lab API instead —
// MustConfig(DLA).SystemOptions() is the equivalent.
func DLAOptions() SystemOptions { return lab.MustConfig(lab.DLA).SystemOptions() }

// R3Options returns the full R3-DLA configuration (T1 + value reuse +
// fetch buffer + recycling).
//
// Deprecated: build configurations through the Lab API instead —
// MustConfig(R3).SystemOptions() is the equivalent.
func R3Options() SystemOptions { return lab.MustConfig(lab.R3).SystemOptions() }

// DefaultCoreConfig returns the Table I processing node.
func DefaultCoreConfig() CoreConfig { return pipeline.DefaultConfig() }

// HalfCoreConfig returns half the Table I node (one side of the SMT
// split of Sec. IV-B3).
func HalfCoreConfig() CoreConfig { return pipeline.HalfConfig() }

// WideCoreConfig returns the doubled node the SMT study splits.
func WideCoreConfig() CoreConfig { return pipeline.WideConfig() }
